"""Phase P2: Algorithm 1 maximal-instance enumeration."""

from __future__ import annotations

import pytest

from repro.core.enumeration import find_instances, find_instances_in_match
from repro.core.instance import is_maximal, is_valid_instance
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


def chain_graph(*events):
    """Build a graph from (src, dst, t, f) tuples."""
    return InteractionGraph.from_tuples(events)


def run_search(graph, motif, **kwargs):
    ts = graph.to_time_series()
    matches = find_structural_matches(ts, motif)
    return find_instances(matches, **kwargs), ts


class TestBasicEnumeration:
    def test_single_edge_motif(self):
        g = chain_graph(("a", "b", 1, 2.0), ("a", "b", 5, 3.0), ("a", "b", 40, 1.0))
        motif = Motif.chain(2, delta=10, phi=0)
        instances, ts = run_search(g, motif)
        keys = {tuple(i.runs[0].items()) for i in instances}
        assert keys == {((1, 2.0), (5, 3.0)), ((40, 1.0),)}

    def test_two_edge_chain(self):
        g = chain_graph(("a", "b", 1, 2.0), ("b", "c", 2, 3.0))
        motif = Motif.chain(3, delta=10, phi=0)
        instances, _ = run_search(g, motif)
        assert len(instances) == 1
        assert instances[0].flow == 2.0

    def test_order_violation_no_instance(self):
        g = chain_graph(("a", "b", 5, 2.0), ("b", "c", 2, 3.0))
        motif = Motif.chain(3, delta=10, phi=0)
        instances, _ = run_search(g, motif)
        assert instances == []

    def test_delta_excludes_far_events(self):
        g = chain_graph(("a", "b", 0, 2.0), ("b", "c", 100, 3.0))
        motif = Motif.chain(3, delta=10, phi=0)
        instances, _ = run_search(g, motif)
        assert instances == []

    def test_phi_filters_instances(self):
        g = chain_graph(("a", "b", 1, 2.0), ("b", "c", 2, 3.0))
        motif = Motif.chain(3, delta=10, phi=2.5)
        instances, _ = run_search(g, motif)
        assert instances == []  # e1 aggregate 2.0 < 2.5

    def test_phi_met_by_aggregation(self):
        """The multi-edge semantics: two small transfers aggregate over φ."""
        g = chain_graph(
            ("a", "b", 1, 2.0), ("a", "b", 2, 2.0), ("b", "c", 3, 5.0)
        )
        motif = Motif.chain(3, delta=10, phi=4.0)
        instances, _ = run_search(g, motif)
        assert len(instances) == 1
        assert tuple(instances[0].runs[0].items()) == ((1, 2.0), (2, 2.0))


class TestOutputInvariants:
    @pytest.fixture
    def busy_graph(self):
        return chain_graph(
            ("a", "b", 1, 2.0), ("a", "b", 3, 1.0), ("a", "b", 7, 4.0),
            ("b", "c", 2, 3.0), ("b", "c", 5, 1.0), ("b", "c", 9, 2.0),
            ("c", "a", 4, 2.0), ("c", "a", 8, 5.0), ("c", "a", 11, 1.0),
        )

    @pytest.mark.parametrize("delta,phi", [(4, 0), (6, 2), (10, 0), (10, 3)])
    def test_all_valid_and_maximal(self, busy_graph, delta, phi):
        motif = Motif.cycle(3, delta=delta, phi=phi)
        instances, ts = run_search(busy_graph, motif)
        for inst in instances:
            ok, reason = is_valid_instance(inst, ts)
            assert ok, reason
            assert is_maximal(inst)

    @pytest.mark.parametrize("delta,phi", [(4, 0), (10, 0), (10, 2)])
    def test_no_duplicates(self, busy_graph, delta, phi):
        motif = Motif.cycle(3, delta=delta, phi=phi)
        instances, _ = run_search(busy_graph, motif)
        keys = [i.canonical_key() for i in instances]
        assert len(keys) == len(set(keys))

    def test_delta_growth_dominates(self, busy_graph):
        """Counts need not be monotone in δ (a wider window can merge two
        maximal instances into one), but every maximal instance at a
        smaller δ must be *dominated* by one at a larger δ: same vertices,
        every edge-set contained in the larger instance's edge-set."""
        motif = Motif.chain(3, delta=1, phi=0)
        ts = busy_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        deltas = (1, 2, 4, 8, 12)
        results = {d: find_instances(matches, delta=d) for d in deltas}

        def dominated(small, larger_list):
            small_sets = [set(r.items()) for r in small.runs]
            for big in larger_list:
                if big.vertex_map != small.vertex_map:
                    continue
                big_sets = [set(r.items()) for r in big.runs]
                if all(s <= b for s, b in zip(small_sets, big_sets)):
                    return True
            return False

        for d_small, d_large in zip(deltas, deltas[1:]):
            for inst in results[d_small]:
                assert dominated(inst, results[d_large]), (d_small, d_large)

    def test_antitone_in_phi(self, busy_graph):
        motif = Motif.chain(3, delta=8, phi=0)
        ts = busy_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        counts = [
            len(find_instances(matches, phi=p)) for p in (0, 1, 2, 4, 8)
        ]
        assert counts == sorted(counts, reverse=True)


class TestAblationModes:
    def test_pruning_off_same_results(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=5)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        fast = {i.canonical_key() for i in find_instances(matches)}
        slow = {
            i.canonical_key()
            for i in find_instances(matches, prefix_pruning=False)
        }
        assert fast == slow

    def test_skip_rule_off_is_superset_with_nonmaximal(self, fig7_graph):
        """Without the skip rule, extra (non-maximal) instances appear but
        every maximal instance is still found."""
        motif = Motif.cycle(3, delta=10, phi=0)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        with_rule = {i.canonical_key() for i in find_instances(matches)}
        without_rule = find_instances(matches, skip_rule=False)
        without_keys = {i.canonical_key() for i in without_rule}
        assert with_rule <= without_keys
        extras = [
            i for i in without_rule if i.canonical_key() not in with_rule
        ]
        assert extras, "skip rule should prune something on this input"
        assert all(not is_maximal(i) for i in extras)


class TestStreamingCallback:
    def test_on_instance_streams(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        seen = []
        returned = find_instances(matches, on_instance=seen.append)
        assert returned == []
        assert len(seen) == len(find_instances(matches))


class TestTiedTimestamps:
    def test_tied_elements_inseparable(self):
        """Elements sharing a timestamp must land in the same edge-set."""
        g = chain_graph(
            ("a", "b", 1, 1.0), ("a", "b", 1, 2.0), ("b", "c", 5, 1.0)
        )
        motif = Motif.chain(3, delta=10, phi=0)
        instances, _ = run_search(g, motif)
        assert len(instances) == 1
        assert sorted(instances[0].runs[0].items()) == [(1, 1.0), (1, 2.0)]

    def test_tie_across_edges_blocks_order(self):
        """Strictly-increasing order forbids equal timestamps across sets."""
        g = chain_graph(("a", "b", 5, 1.0), ("b", "c", 5, 1.0))
        motif = Motif.chain(3, delta=10, phi=0)
        instances, _ = run_search(g, motif)
        assert instances == []


class TestParallelMotifEdges:
    def test_same_pair_twice_in_motif(self):
        """A motif path may traverse the same vertex pair twice (u→v→u→v);
        the two motif edges then split the same series."""
        g = chain_graph(
            ("a", "b", 1, 1.0), ("b", "a", 2, 1.0), ("a", "b", 3, 1.0)
        )
        motif = Motif([0, 1, 0, 1], delta=10, phi=0)
        instances, ts = run_search(g, motif)
        assert len(instances) == 1
        inst = instances[0]
        assert [tuple(r.items()) for r in inst.runs] == [
            ((1, 1.0),), ((2, 1.0),), ((3, 1.0),)
        ]
        ok, reason = is_valid_instance(inst, ts)
        assert ok, reason
