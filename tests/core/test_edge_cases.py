"""Edge cases and failure injection across the search stack."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


class TestMotifFromString:
    def test_catalog_name(self):
        m = Motif.from_string("M(4,4)B", delta=10, phi=2)
        assert m.spanning_path == (0, 1, 2, 0, 3)
        assert m.name == "M(4,4)B"

    def test_dashed_path(self):
        m = Motif.from_string("0-1-2-0", delta=10)
        assert m.spanning_path == (0, 1, 2, 0)

    def test_dashed_path_arbitrary_labels(self):
        m = Motif.from_string("a-b-a", delta=10)
        assert m.spanning_path == (0, 1, 0)

    def test_whitespace_tolerated(self):
        assert Motif.from_string(" M(3,3) ", delta=1).name == "M(3,3)"

    @pytest.mark.parametrize("bad", ["", "justone", "M(9,9)", "-"])
    def test_invalid_specs(self, bad):
        with pytest.raises(ValueError, match="motif spec"):
            Motif.from_string(bad, delta=1)


class TestDegenerateGraphs:
    def test_motif_larger_than_graph(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        engine = FlowMotifEngine(g)
        assert engine.find_instances(Motif.chain(5, delta=10)).count == 0

    def test_single_pair_many_events(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", float(t), 1.0) for t in range(30)]
        )
        engine = FlowMotifEngine(g)
        result = engine.find_instances(Motif.chain(2, delta=5, phi=3))
        assert result.count > 0
        for inst in result.instances:
            assert inst.runs[0].flow >= 3
            assert inst.span <= 5

    def test_self_loop_interactions(self):
        g = InteractionGraph.from_tuples(
            [("a", "a", 1, 2.0), ("a", "b", 2, 3.0)]
        )
        engine = FlowMotifEngine(g)
        loop_motif = Motif([0, 0], delta=10, phi=1)
        result = engine.find_instances(loop_motif)
        assert result.count == 1
        assert result.instances[0].vertex_map == ("a",)

    def test_phi_above_total_flow(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 2, 1.0)]
        )
        engine = FlowMotifEngine(g)
        assert engine.find_instances(Motif.chain(3, delta=10, phi=100)).count == 0

    def test_delta_zero_multi_edge_motif(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "c", 1, 1.0)]
        )
        engine = FlowMotifEngine(g)
        # Strict order cannot hold inside a zero-length window.
        assert engine.find_instances(Motif.chain(3, delta=0)).count == 0

    def test_delta_zero_single_edge_motif(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("a", "b", 1, 2.0), ("a", "b", 5, 1.0)]
        )
        engine = FlowMotifEngine(g)
        result = engine.find_instances(Motif.chain(2, delta=0))
        keys = {tuple(sorted(i.runs[0].items())) for i in result.instances}
        assert keys == {((1, 1.0), (1, 2.0)), ((5, 1.0),)}


class TestNumericRobustness:
    def test_float_flows_accumulate(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 0.1), ("a", "b", 2, 0.2), ("b", "c", 3, 0.3)]
        )
        engine = FlowMotifEngine(g)
        # 0.1 + 0.2 != 0.3 exactly in binary floats; the φ check uses the
        # accumulated prefix sums consistently, so 0.3 either passes both
        # edges or neither — here both pass at φ = 0.3 - 1e-12.
        result = engine.find_instances(
            Motif.chain(3, delta=10, phi=0.3 - 1e-12)
        )
        assert result.count == 1

    def test_large_timestamps(self):
        base = 1.7e12  # epoch-milliseconds territory
        g = InteractionGraph.from_tuples(
            [("a", "b", base + 1, 1.0), ("b", "c", base + 2, 1.0)]
        )
        engine = FlowMotifEngine(g)
        assert engine.find_instances(Motif.chain(3, delta=10)).count == 1

    def test_negative_timestamps(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", -10, 1.0), ("b", "c", -5, 1.0)]
        )
        engine = FlowMotifEngine(g)
        assert engine.find_instances(Motif.chain(3, delta=10)).count == 1


class TestLongMotifs:
    def test_six_edge_chain(self):
        g = InteractionGraph.from_tuples(
            [(i, i + 1, float(i), 2.0) for i in range(6)]
        )
        engine = FlowMotifEngine(g)
        motif = Motif(list(range(7)), delta=10, phi=1)
        result = engine.find_instances(motif)
        assert result.count == 1
        assert result.instances[0].flow == 2.0

    def test_deep_recursion_safe(self):
        """A 12-edge motif path exercises recursion depth (still tiny)."""
        g = InteractionGraph.from_tuples(
            [(i, i + 1, float(i), 1.0) for i in range(12)]
        )
        engine = FlowMotifEngine(g)
        motif = Motif(list(range(13)), delta=20, phi=0)
        assert engine.find_instances(motif).count == 1
