"""Online detection must equal offline search, exactly once."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif, paper_motifs
from repro.core.streaming import StreamingDetector
from repro.datasets.fixtures import figure7_match_graph
from repro.graph.interaction import InteractionGraph


def random_stream(seed, nodes=6, events=60, horizon=60):
    rng = random.Random(seed)
    stream = []
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        stream.append((src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5)))
    stream.sort(key=lambda e: e[2])
    return stream


def offline_keys(stream, motif):
    graph = InteractionGraph.from_tuples(stream)
    result = FlowMotifEngine(graph).find_instances(motif)
    return {i.canonical_key() for i in result.instances}


def streamed_keys(stream, motif, poll_every, seed=0):
    detector = StreamingDetector(motif)
    emitted = []
    for i, (src, dst, t, f) in enumerate(stream):
        detector.add(src, dst, t, f)
        if poll_every and i % poll_every == 0:
            emitted.extend(detector.poll())
    emitted.extend(detector.flush())
    keys = [i.canonical_key() for i in emitted]
    assert len(keys) == len(set(keys)), "duplicate emission"
    return set(keys)


class TestStreamingEqualsOffline:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("poll_every", [1, 7, 0])
    def test_chain(self, seed, poll_every):
        stream = random_stream(seed)
        motif = Motif.chain(3, delta=12, phi=2)
        assert streamed_keys(stream, motif, poll_every) == offline_keys(
            stream, motif
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_cycle(self, seed):
        stream = random_stream(seed, nodes=5)
        motif = Motif.cycle(3, delta=15, phi=0)
        assert streamed_keys(stream, motif, 5) == offline_keys(stream, motif)

    def test_catalog_small_stream(self):
        stream = random_stream(42, nodes=8, events=80)
        for name, motif in paper_motifs(delta=12, phi=1).items():
            assert streamed_keys(stream, motif, 10) == offline_keys(
                stream, motif
            ), name

    def test_figure7_stream(self):
        stream = sorted(
            ((it.src, it.dst, it.time, it.flow)
             for it in figure7_match_graph().interactions()),
            key=lambda e: e[2],
        )
        motif = Motif.cycle(3, delta=10, phi=0)
        assert streamed_keys(stream, motif, 2) == offline_keys(stream, motif)
        assert len(streamed_keys(stream, motif, 2)) == 6


class TestStreamingBehaviour:
    def test_poll_before_window_closes_is_empty(self):
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
        detector.add("a", "b", 1, 5)
        detector.add("b", "c", 3, 4)
        assert detector.poll() == []  # window [1, 11] still open
        detector.add("z", "w", 50, 1)
        assert len(detector.poll()) == 1
        assert detector.emitted_count == 1

    def test_flush_without_later_events(self):
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
        detector.add("a", "b", 1, 5)
        detector.add("b", "c", 3, 4)
        flushed = detector.flush()
        assert len(flushed) == 1
        assert flushed[0].flow == 4

    def test_out_of_order_rejected(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        detector.add("a", "b", 5, 1)
        with pytest.raises(ValueError, match="out-of-order"):
            detector.add("a", "b", 4, 1)

    def test_tie_with_watermark_allowed(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        detector.add("a", "b", 5, 1)
        detector.add("c", "d", 5, 1)  # equal timestamps are fine
        assert detector.watermark == 5

    def test_window_not_closed_at_exact_watermark(self):
        """An event at exactly window end could still arrive (tied times);
        the window must stay open until the watermark passes it."""
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0))
        detector.add("a", "b", 1, 2)
        detector.add("x", "y", 5, 1)  # watermark == window end of [1, 5]
        assert detector.poll() == []
        detector.add("a", "b", 5, 3)  # lands inside [1, 5]!
        detector.add("z", "w", 20, 1)
        [instance] = [
            i for i in detector.poll() if i.vertex_map == ("a", "b")
        ]
        assert instance.flow == 5.0  # both events aggregated

    def test_empty_detector(self):
        detector = StreamingDetector(Motif.chain(3, delta=10))
        assert detector.poll() == []
        assert detector.flush() == []

    def test_invalid_flow_rejected(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        with pytest.raises(ValueError, match="positive"):
            detector.add("a", "b", 1, 0)


class TestViewCaching:
    """Poll-without-add must not rebuild the time-series view (regression
    for the O(|E| + matches)-per-poll behaviour the docstring used to
    admit)."""

    def _fed_detector(self):
        detector = StreamingDetector(Motif.chain(3, delta=5, phi=0))
        detector.add("a", "b", 1, 2)
        detector.add("b", "c", 3, 4)
        detector.add("x", "y", 50, 1)
        return detector

    def test_poll_without_add_does_no_rebuild(self):
        detector = self._fed_detector()
        first = detector.poll()
        assert len(first) == 1
        rebuilds = detector.rebuild_count
        assert rebuilds >= 1
        for _ in range(3):
            assert detector.poll() == []  # nothing new: exactly-once holds
        assert detector.rebuild_count == rebuilds

    def test_flush_after_poll_reuses_view(self):
        detector = self._fed_detector()
        detector.poll()
        rebuilds = detector.rebuild_count
        detector.flush()
        assert detector.rebuild_count == rebuilds

    def test_add_invalidates_cache(self):
        detector = self._fed_detector()
        detector.poll()
        rebuilds = detector.rebuild_count
        detector.add("a", "b", 60, 2)
        detector.add("b", "c", 62, 3)
        detector.add("z", "w", 99, 1)
        emitted = detector.poll()
        assert detector.rebuild_count == rebuilds + 1
        assert any(i.vertex_map == ("a", "b", "c") for i in emitted)

    def test_emissions_identical_with_redundant_polls(self):
        """Interleaving no-op polls must not change the emitted set."""
        stream = random_stream(seed=11)
        motif = Motif.chain(3, delta=8, phi=0)
        baseline = streamed_keys(stream, motif, poll_every=7)
        detector = StreamingDetector(motif)
        chatty = set()
        for i, (src, dst, t, flow) in enumerate(stream):
            detector.add(src, dst, t, flow)
            if i % 7 == 0:
                for _ in range(3):  # redundant polls between adds
                    chatty.update(i.canonical_key() for i in detector.poll())
        chatty.update(i.canonical_key() for i in detector.flush())
        assert chatty == baseline
