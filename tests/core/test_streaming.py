"""Online detection must equal offline search, exactly once."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif, paper_motifs
from repro.core.streaming import StreamingDetector
from repro.datasets.fixtures import figure7_match_graph
from repro.graph.interaction import InteractionGraph


def random_stream(seed, nodes=6, events=60, horizon=60):
    rng = random.Random(seed)
    stream = []
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        stream.append((src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5)))
    stream.sort(key=lambda e: e[2])
    return stream


def offline_keys(stream, motif):
    graph = InteractionGraph.from_tuples(stream)
    result = FlowMotifEngine(graph).find_instances(motif)
    return {i.canonical_key() for i in result.instances}


def streamed_keys(stream, motif, poll_every, mode="incremental"):
    detector = StreamingDetector(motif, mode=mode)
    emitted = []
    for i, (src, dst, t, f) in enumerate(stream):
        detector.add(src, dst, t, f)
        if poll_every and i % poll_every == 0:
            emitted.extend(detector.poll())
    emitted.extend(detector.flush())
    keys = [i.canonical_key() for i in emitted]
    assert len(keys) == len(set(keys)), "duplicate emission"
    return set(keys)


class TestStreamingEqualsOffline:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("poll_every", [1, 7, 0])
    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_chain(self, seed, poll_every, mode):
        stream = random_stream(seed)
        motif = Motif.chain(3, delta=12, phi=2)
        assert streamed_keys(stream, motif, poll_every, mode) == offline_keys(
            stream, motif
        )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_cycle(self, seed, mode):
        stream = random_stream(seed, nodes=5)
        motif = Motif.cycle(3, delta=15, phi=0)
        assert streamed_keys(stream, motif, 5, mode) == offline_keys(
            stream, motif
        )

    def test_catalog_small_stream(self):
        stream = random_stream(42, nodes=8, events=80)
        for name, motif in paper_motifs(delta=12, phi=1).items():
            assert streamed_keys(stream, motif, 10) == offline_keys(
                stream, motif
            ), name

    def test_figure7_stream(self):
        stream = sorted(
            ((it.src, it.dst, it.time, it.flow)
             for it in figure7_match_graph().interactions()),
            key=lambda e: e[2],
        )
        motif = Motif.cycle(3, delta=10, phi=0)
        assert streamed_keys(stream, motif, 2) == offline_keys(stream, motif)
        assert len(streamed_keys(stream, motif, 2)) == 6


class TestStreamingBehaviour:
    def test_poll_before_window_closes_is_empty(self):
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
        detector.add("a", "b", 1, 5)
        detector.add("b", "c", 3, 4)
        assert detector.poll() == []  # window [1, 11] still open
        detector.add("z", "w", 50, 1)
        assert len(detector.poll()) == 1
        assert detector.emitted_count == 1

    def test_flush_without_later_events(self):
        detector = StreamingDetector(Motif.chain(3, delta=10, phi=0))
        detector.add("a", "b", 1, 5)
        detector.add("b", "c", 3, 4)
        flushed = detector.flush()
        assert len(flushed) == 1
        assert flushed[0].flow == 4

    def test_out_of_order_rejected(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        detector.add("a", "b", 5, 1)
        with pytest.raises(ValueError, match="out-of-order"):
            detector.add("a", "b", 4, 1)

    def test_tie_with_watermark_allowed(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        detector.add("a", "b", 5, 1)
        detector.add("c", "d", 5, 1)  # equal timestamps are fine
        assert detector.watermark == 5

    def test_window_not_closed_at_exact_watermark(self):
        """An event at exactly window end could still arrive (tied times);
        the window must stay open until the watermark passes it."""
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0))
        detector.add("a", "b", 1, 2)
        detector.add("x", "y", 5, 1)  # watermark == window end of [1, 5]
        assert detector.poll() == []
        detector.add("a", "b", 5, 3)  # lands inside [1, 5]!
        detector.add("z", "w", 20, 1)
        [instance] = [
            i for i in detector.poll() if i.vertex_map == ("a", "b")
        ]
        assert instance.flow == 5.0  # both events aggregated

    def test_empty_detector(self):
        detector = StreamingDetector(Motif.chain(3, delta=10))
        assert detector.poll() == []
        assert detector.flush() == []

    def test_invalid_flow_rejected(self):
        detector = StreamingDetector(Motif.chain(2, delta=10))
        with pytest.raises(ValueError, match="positive"):
            detector.add("a", "b", 1, 0)


class TestIncrementalContract:
    """The incremental detector's hard contract: ``rebuild_count`` stays 0
    for its whole lifetime — adds grow the graph in place, polls pop only
    matches with ready windows, nothing is recomputed from scratch."""

    def _fed_detector(self, **kwargs):
        detector = StreamingDetector(Motif.chain(3, delta=5, phi=0), **kwargs)
        detector.add("a", "b", 1, 2)
        detector.add("b", "c", 3, 4)
        detector.add("x", "y", 50, 1)
        return detector

    def test_rebuild_count_stays_zero(self):
        detector = self._fed_detector()
        first = detector.poll()
        assert len(first) == 1
        for _ in range(3):
            assert detector.poll() == []  # nothing new: exactly-once holds
        assert detector.rebuild_count == 0

    def test_interleaved_adds_and_polls_never_rebuild(self):
        """The sequence that previously forced a rebuild per batch: every
        add dirties the view, every poll pays O(|E| + matches). Now the
        counter must stay flat at zero after warmup."""
        detector = self._fed_detector()
        detector.poll()
        assert detector.rebuild_count == 0  # warmup done, contract holds
        emitted = []
        for t in range(60, 90, 3):
            detector.add("a", "b", t, 2)
            detector.add("b", "c", t + 1, 3)
            emitted.extend(detector.poll())
        emitted.extend(detector.flush())
        assert detector.rebuild_count == 0
        assert any(i.vertex_map == ("a", "b", "c") for i in emitted)

    def test_rebuild_mode_still_counts(self):
        """The legacy baseline keeps its semantics (benchmark ablation)."""
        detector = self._fed_detector(mode="rebuild")
        detector.poll()
        rebuilds = detector.rebuild_count
        assert rebuilds >= 1
        detector.poll()
        assert detector.rebuild_count == rebuilds  # cached between polls
        detector.add("a", "b", 60, 2)
        detector.add("z", "w", 99, 1)
        detector.poll()
        assert detector.rebuild_count == rebuilds + 1

    def test_modes_emit_identically(self):
        stream = random_stream(seed=23)
        motif = Motif.chain(3, delta=9, phi=1)
        assert streamed_keys(stream, motif, 4, "incremental") == streamed_keys(
            stream, motif, 4, "rebuild"
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            StreamingDetector(Motif.chain(2, delta=1), mode="magic")

    def test_metrics_counters(self):
        detector = self._fed_detector()
        detector.poll()
        snapshot = detector.metrics().snapshot()
        assert snapshot["counters"]["stream.events"] == 3
        assert snapshot["gauges"]["stream.pairs"] == 3
        assert snapshot["counters"]["stream.rebuilds"] == 0
        assert snapshot["counters"]["stream.emitted"] == 1
        assert detector.match_count >= 1
        assert detector.num_events == 3

    def test_emissions_identical_with_redundant_polls(self):
        """Interleaving no-op polls must not change the emitted set."""
        stream = random_stream(seed=11)
        motif = Motif.chain(3, delta=8, phi=0)
        baseline = streamed_keys(stream, motif, poll_every=7)
        detector = StreamingDetector(motif)
        chatty = set()
        for i, (src, dst, t, flow) in enumerate(stream):
            detector.add(src, dst, t, flow)
            if i % 7 == 0:
                for _ in range(3):  # redundant polls between adds
                    chatty.update(i.canonical_key() for i in detector.poll())
        chatty.update(i.canonical_key() for i in detector.flush())
        assert chatty == baseline
        assert detector.rebuild_count == 0


class TestStreamingEdgeCases:
    """Boundary behaviour around the watermark, horizons and anchors."""

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_duplicate_timestamps_at_watermark(self, mode):
        """Events tied with the watermark must still land inside any open
        window; closing happens only when the watermark strictly passes."""
        detector = StreamingDetector(
            Motif.chain(2, delta=4, phi=0), mode=mode
        )
        detector.add("a", "b", 1, 2)
        detector.add("a", "b", 5, 3)   # at window end of [1, 5]
        detector.add("c", "d", 5, 1)   # tied with the watermark
        assert detector.poll() == []   # [1, 5] not closed: more t=5 possible
        detector.add("a", "b", 5, 4)   # another tie, still inside [1, 5]
        detector.add("z", "w", 20, 1)
        emitted = [
            i for i in detector.poll() if i.vertex_map == ("a", "b")
        ]
        flows = sorted(i.flow for i in emitted)
        assert flows[-1] == 9.0  # all three t<=5 events aggregated

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_window_closing_exactly_at_horizon_stays_open(self, mode):
        detector = StreamingDetector(
            Motif.chain(2, delta=4, phi=0), mode=mode
        )
        detector.add("a", "b", 1, 2)
        detector.add("x", "y", 5, 1)   # watermark == window end of [1, 5]
        assert detector.poll() == []
        detector.add("a", "b", 5, 3)   # lands inside [1, 5]!
        detector.add("z", "w", 20, 1)
        [instance] = [
            i for i in detector.poll() if i.vertex_map == ("a", "b")
        ]
        assert instance.flow == 5.0
        # flush() closes the remaining windows exactly once.
        remaining = detector.flush()
        keys = [i.canonical_key() for i in remaining]
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_poll_before_any_add(self, mode):
        detector = StreamingDetector(
            Motif.chain(3, delta=10, phi=0), mode=mode
        )
        assert detector.poll() == []
        assert detector.flush() == []
        assert detector.rebuild_count == 0

    @pytest.mark.parametrize("mode", ["incremental", "rebuild"])
    def test_equal_timestamp_anchor_dedup(self, mode):
        """Several first-edge events at one timestamp anchor one window —
        emissions must not duplicate."""
        detector = StreamingDetector(
            Motif.chain(2, delta=3, phi=0), mode=mode
        )
        detector.add("a", "b", 2, 1)
        detector.add("a", "b", 2, 2)
        detector.add("a", "b", 2, 4)
        detector.add("z", "w", 50, 1)
        emitted = detector.poll()
        keys = [i.canonical_key() for i in emitted]
        assert len(keys) == len(set(keys))
        [instance] = [i for i in emitted if i.vertex_map == ("a", "b")]
        assert instance.flow == 7.0
        assert detector.poll() == []  # exactly once

    def test_add_after_flush_rejected(self):
        detector = StreamingDetector(Motif.chain(2, delta=4, phi=0))
        detector.add("a", "b", 1, 2)
        detector.flush()
        with pytest.raises(ValueError, match="flushed"):
            detector.add("a", "b", 9, 1)
        assert detector.flush() == []  # idempotent

    def test_new_pair_after_warmup_discovers_matches(self):
        """A pair first seen late must still create its matches — and
        without any rebuild."""
        detector = StreamingDetector(Motif.chain(3, delta=8, phi=0))
        detector.add("a", "b", 1, 2)
        detector.add("q", "r", 30, 1)
        detector.poll()
        before = detector.match_count
        detector.add("b", "c", 31, 5)  # completes a->b->c structurally
        assert detector.match_count > before
        detector.add("a", "b", 40, 1)
        detector.add("b", "c", 42, 6)
        detector.add("z", "w", 99, 1)
        emitted = detector.poll()
        assert any(i.vertex_map == ("a", "b", "c") for i in emitted)
        assert detector.rebuild_count == 0


class TestEmissionBufferRecovery:
    def test_instances_survive_an_aborted_poll(self):
        """An exception inside poll() (e.g. Ctrl-C in a live session) must
        not lose instances whose progress cursor already advanced — they
        stay buffered and come out of the next poll/flush."""
        detector = StreamingDetector(Motif.chain(2, delta=2, phi=0))
        detector.add("a", "b", 1, 5)
        detector.add("z", "w", 50, 1)

        class Boom(Exception):
            pass

        matcher = detector._matcher
        original = matcher.emit_closed

        def exploding(horizon, sink):
            original(horizon, sink)
            raise Boom()

        matcher.emit_closed = exploding
        with pytest.raises(Boom):
            detector.poll()
        matcher.emit_closed = original
        recovered = detector.flush()
        assert any(i.vertex_map == ("a", "b") for i in recovered)
        keys = [i.canonical_key() for i in recovered]
        assert len(keys) == len(set(keys))  # still exactly once
