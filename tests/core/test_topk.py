"""Top-k search must equal the sorted prefix of full enumeration."""

from __future__ import annotations

import random

import pytest

from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.core.topk import TopKCollector, kth_instance_flow, top_k_instances
from repro.graph.interaction import InteractionGraph


def random_graph(seed, nodes=6, events=50, horizon=60):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


class TestTopKCollector:
    def test_keeps_best_k(self):
        collector = TopKCollector(2)
        flows = []

        class Fake:
            def __init__(self, f):
                self.flow = f

        for f in (1.0, 5.0, 3.0, 4.0):
            collector.offer(Fake(f))
        assert [i.flow for i in collector.results()] == [5.0, 4.0]
        assert collector.kth_flow() == 4.0
        assert collector.threshold == 4.0

    def test_threshold_before_full(self):
        collector = TopKCollector(3, floor=1.5)
        assert collector.threshold == 1.5
        assert collector.kth_flow() is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKCollector(0)


class TestTopKAgainstEnumeration:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_flows_match_sorted_enumeration(self, seed, k):
        g = random_graph(seed)
        motif = Motif.chain(3, delta=15, phi=0)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        all_flows = sorted(
            (i.flow for i in find_instances(matches)), reverse=True
        )
        top = top_k_instances(matches, k)
        assert [i.flow for i in top] == pytest.approx(all_flows[:k])

    def test_results_sorted_descending(self):
        g = random_graph(42)
        motif = Motif.chain(3, delta=20, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        top = top_k_instances(matches, 8)
        flows = [i.flow for i in top]
        assert flows == sorted(flows, reverse=True)

    def test_results_are_maximal_instances(self):
        from repro.core.instance import is_maximal

        g = random_graph(7)
        motif = Motif.chain(3, delta=15, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        for inst in top_k_instances(matches, 5):
            assert is_maximal(inst, delta=15)

    def test_fewer_instances_than_k(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        top = top_k_instances(matches, 100)
        assert len(top) == len(find_instances(matches))

    def test_kth_instance_flow(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        assert kth_instance_flow(matches, 1) == 5.0
        # 6 instances exist in total; k beyond that returns the worst flow.
        all_flows = sorted(
            (i.flow for i in find_instances(matches)), reverse=True
        )
        assert kth_instance_flow(matches, 3) == all_flows[2]
        assert kth_instance_flow(matches, 50) == all_flows[-1]

    def test_no_instances(self):
        g = InteractionGraph.from_tuples([("a", "b", 1, 1.0)])
        motif = Motif.chain(3, delta=10, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        assert top_k_instances(matches, 3) == []
        assert kth_instance_flow(matches, 1) is None

    def test_delta_override(self, fig7_graph):
        motif = Motif.cycle(3, delta=999, phi=0)
        matches = find_structural_matches(fig7_graph.to_time_series(), motif)
        top = top_k_instances(matches, 1, delta=10)
        assert top[0].flow == 5.0
