"""The DP top-1 module (Algorithm 2 / Eq. 2) including the Table 2 example."""

from __future__ import annotations

import random

import pytest

from repro.core.dp import (
    max_flow_in_window,
    top_one_in_match,
    top_one_instance,
    top_one_per_window,
)
from repro.core.enumeration import find_instances
from repro.core.instance import is_valid_instance
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.core.windows import Window
from repro.graph.interaction import InteractionGraph


def random_graph(seed, nodes=6, events=45, horizon=50):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


@pytest.fixture
def fig7_match(fig7_graph):
    motif = Motif.cycle(3, delta=10, phi=0)
    matches = find_structural_matches(fig7_graph.to_time_series(), motif)
    return next(m for m in matches if m.vertex_map[0] == "u3")


class TestTable2:
    """The DP trace of Table 2 (window [10, 20] of the Figure 7 match).

    The printed table contains cell-level arithmetic typos (DESIGN.md §5
    errata) — e.g. ``Flow([10,15],1)`` is printed as 7 although the series
    prefix sums give 10, and the κ=3 column at t=14 prints 4 where Eq. 2
    yields 3 — but its *final* answer is unambiguous: the best instance in
    the window has flow 5 and is
    ``[e1←{(10,5)}, e2←{(11,3),(16,3)}, e3←{(19,6)}]``. We assert that.
    """

    def test_window_optimum_is_5(self, fig7_match):
        flow, _ = max_flow_in_window(
            fig7_match.series, Window(10, 20), method="quadratic"
        )
        assert flow == 5.0

    def test_reconstruction_matches_paper(self, fig7_match, fig7_graph):
        flow, intervals = max_flow_in_window(
            fig7_match.series, Window(10, 20), method="quadratic",
            reconstruct=True,
        )
        assert flow == 5.0
        result = top_one_in_match(fig7_match)
        events = [tuple(run.items()) for run in result.instance.runs]
        assert events == [
            ((10, 5),),
            ((11, 3), (16, 3)),
            ((19, 6),),
        ]
        ok, reason = is_valid_instance(
            result.instance, fig7_graph.to_time_series()
        )
        assert ok, reason

    def test_second_window_is_weaker(self, fig7_match):
        flow, _ = max_flow_in_window(fig7_match.series, Window(15, 25))
        assert flow == 3.0

    def test_base_row_prefix_sums(self, fig7_match):
        """Flow([t1,ti],1) is the running prefix sum of R(e1) — checked at
        the unambiguous columns of Table 2 (10→5, 13→7)."""
        flow, _ = max_flow_in_window(
            fig7_match.series, Window(10, 10), method="quadratic"
        )
        # Single timestamp: a 3-edge motif cannot fit; optimum is 0.
        assert flow == 0.0


class TestDPEqualsEnumerationMax:
    @pytest.mark.parametrize("seed", range(8))
    def test_chain_top1(self, seed):
        g = random_graph(seed)
        motif = Motif.chain(3, delta=12, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        best_enum = max(
            (i.flow for i in find_instances(matches)), default=0.0
        )
        best_dp = top_one_instance(matches, reconstruct=False)
        assert best_dp.flow == pytest.approx(best_enum)

    @pytest.mark.parametrize("seed", range(4))
    def test_cycle_top1(self, seed):
        g = random_graph(seed, nodes=5, events=60)
        motif = Motif.cycle(3, delta=15, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        best_enum = max(
            (i.flow for i in find_instances(matches)), default=0.0
        )
        best_dp = top_one_instance(matches, reconstruct=False)
        assert best_dp.flow == pytest.approx(best_enum)

    @pytest.mark.parametrize("seed", range(4))
    def test_reconstructed_instance_achieves_flow(self, seed):
        g = random_graph(seed)
        motif = Motif.chain(4, delta=20, phi=0)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        best = top_one_instance(matches)
        if best.instance is None:
            assert best.flow == 0.0
            return
        assert best.instance.flow == pytest.approx(best.flow)
        ok, reason = is_valid_instance(best.instance, ts, phi=0.0)
        assert ok, reason


class TestBisectMethodEquivalence:
    @pytest.mark.parametrize("seed", range(10))
    def test_quadratic_vs_bisect(self, seed):
        g = random_graph(seed, nodes=5, events=70, horizon=40)
        motif = Motif.chain(3, delta=18, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        for match in matches[:10]:
            quad = top_one_in_match(match, method="quadratic", reconstruct=False)
            bis = top_one_in_match(match, method="bisect", reconstruct=False)
            assert quad.flow == pytest.approx(bis.flow)

    @pytest.mark.parametrize("seed", range(10))
    def test_quadratic_vs_fused(self, seed):
        """The two-pointer fused sweep evaluates Eq. 2 exactly — per
        window (dense windows stress the crossing-pointer monotonicity)
        and per match."""
        g = random_graph(seed, nodes=4, events=90, horizon=30)
        motif = Motif.chain(3, delta=22, phi=0)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        from repro.core.windows import iter_maximal_windows

        for match in matches[:8]:
            for window in iter_maximal_windows(
                match.series[0], match.series[-1], 22
            ):
                quad = max_flow_in_window(
                    match.series, window, method="quadratic"
                )[0]
                fused = max_flow_in_window(match.series, window, method="fused")[0]
                assert fused == pytest.approx(quad)
            quad_best = top_one_in_match(match, method="quadratic", reconstruct=False)
            fused_best = top_one_in_match(match, method="fused", reconstruct=False)
            assert fused_best.flow == pytest.approx(quad_best.flow)

    @pytest.mark.parametrize("seed", range(6))
    def test_fused_reconstruction_is_valid_and_achieves_flow(self, seed):
        g = random_graph(seed, nodes=5, events=70, horizon=40)
        motif = Motif.chain(3, delta=18, phi=0)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        best = top_one_instance(matches, method="fused")
        if best.instance is None:
            assert best.flow == 0.0
            return
        assert best.instance.flow == pytest.approx(best.flow)
        ok, reason = is_valid_instance(best.instance, ts, phi=0.0)
        assert ok, reason

    def test_invalid_method_rejected(self, fig7_match):
        with pytest.raises(ValueError, match="method"):
            max_flow_in_window(fig7_match.series, Window(10, 20), method="magic")


class TestExtensibilityVariants:
    def test_top_one_per_window(self, fig7_match):
        results = top_one_per_window(fig7_match)
        assert [(r.window.start, r.flow) for r in results] == [
            (10, 5.0), (15, 3.0),
        ]

    def test_top_one_per_match_selects_best_window(self, fig7_match):
        best = top_one_in_match(fig7_match)
        assert best.flow == 5.0
        assert best.window == Window(10, 20)

    def test_empty_matches(self):
        best = top_one_instance([])
        assert best.flow == 0.0
        assert best.instance is None

    def test_single_edge_motif(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 2.0), ("a", "b", 3, 4.0), ("a", "b", 50, 1.0)]
        )
        motif = Motif.chain(2, delta=10, phi=0)
        matches = find_structural_matches(g.to_time_series(), motif)
        best = top_one_instance(matches)
        assert best.flow == 6.0
