"""Maximal δ-window iteration and the skip rule."""

from __future__ import annotations

import pytest

from repro.core.windows import iter_maximal_windows
from repro.graph.timeseries import EdgeSeries


def series(*times):
    return EdgeSeries("u", "v", list(times), [1.0] * len(times))


class TestWindowAnchoring:
    def test_single_edge_motif_windows(self):
        s = series(0, 5, 20)
        windows = list(iter_maximal_windows(s, s, delta=10))
        # Anchor 0 covers {0,5}; anchor 5 adds nothing new past 5+10=15;
        # wait: last element <= 15 is 5 == previous → skipped; anchor 20 new.
        assert [(w.start, w.end) for w in windows] == [(0, 10), (20, 30)]

    def test_every_anchor_kept_when_new_content(self):
        first = series(0, 10, 20)
        last = EdgeSeries("v", "w", [5, 15, 25], [1.0] * 3)
        windows = list(iter_maximal_windows(first, last, delta=10))
        assert [(w.start, w.end) for w in windows] == [(0, 10), (10, 20), (20, 30)]

    def test_window_without_last_edge_content_dropped(self):
        first = series(0, 100)
        last = EdgeSeries("v", "w", [5, 105], [1.0, 1.0])
        windows = list(iter_maximal_windows(first, last, delta=10))
        assert [(w.start, w.end) for w in windows] == [(0, 10), (100, 110)]

    def test_last_event_before_anchor_dropped(self):
        first = series(50)
        last = EdgeSeries("v", "w", [10], [1.0])
        assert list(iter_maximal_windows(first, last, delta=10)) == []

    def test_tied_anchors_collapse(self):
        first = EdgeSeries("u", "v", [5, 5, 30], [1.0, 2.0, 3.0])
        last = EdgeSeries("v", "w", [6, 35], [1.0, 1.0])
        windows = list(iter_maximal_windows(first, last, delta=10))
        assert [(w.start, w.end) for w in windows] == [(5, 15), (30, 40)]

    def test_negative_delta_rejected(self):
        s = series(1)
        with pytest.raises(ValueError, match="non-negative"):
            list(iter_maximal_windows(s, s, delta=-1))

    def test_zero_delta(self):
        first = series(5, 7)
        last = EdgeSeries("v", "w", [5, 7], [1.0, 1.0])
        windows = list(iter_maximal_windows(first, last, delta=0))
        assert [(w.start, w.end) for w in windows] == [(5, 5), (7, 7)]


class TestSkipRule:
    def test_paper_example(self, fig7_graph):
        ts = fig7_graph.to_time_series()
        first = ts.series("u3", "u1")
        last = ts.series("u2", "u3")
        windows = list(iter_maximal_windows(first, last, delta=10))
        assert [(w.start, w.end) for w in windows] == [(10, 20), (15, 25)]

    def test_disabling_skip_rule_returns_all_anchors(self, fig7_graph):
        ts = fig7_graph.to_time_series()
        first = ts.series("u3", "u1")
        last = ts.series("u2", "u3")
        windows = list(
            iter_maximal_windows(first, last, delta=10, skip_rule=False)
        )
        assert [w.start for w in windows] == [10, 13, 15, 18]

    def test_skip_rule_monotone_last_content(self):
        """Kept windows have strictly increasing last-edge content."""
        first = series(0, 1, 2, 3, 4, 5, 6)
        last = EdgeSeries("v", "w", [2.5, 4.5, 12.5], [1.0] * 3)
        windows = list(iter_maximal_windows(first, last, delta=3))
        lams = []
        for w in windows:
            j = last.last_index_at_or_before(w.end)
            lams.append(last.times[j])
        assert lams == sorted(set(lams))
