"""Unit tests for the incremental structural-match index and its sweep."""

from __future__ import annotations

import random

import pytest

from repro.core.incremental import (
    IncrementalMatcher,
    MatchProgress,
    match_key,
    next_window_end,
    sweep_closed_windows,
)
from repro.core.matching import StructuralMatch, find_structural_matches
from repro.core.motif import Motif, paper_motifs
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import EdgeSeries, GrowableTimeSeriesGraph


def _normalized(matches):
    return {(m.vertex_map, tuple((s.src, s.dst) for s in m.series)) for m in matches}


class TestIncrementalP1:
    """The index's match set must always equal a from-scratch phase P1."""

    def _replay(self, stream, motif):
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, motif.delta, motif.phi)
        for src, dst, t, f in stream:
            matcher.add(src, dst, t, f)
        return graph, matcher

    @pytest.mark.parametrize("name", sorted(paper_motifs(delta=10)))
    def test_matches_equal_offline_p1_catalog(self, name, base_seed):
        rng = random.Random(base_seed)
        stream = []
        for _ in range(80):
            u, v = rng.sample(range(6), 2)
            stream.append((u, v, float(rng.randrange(0, 40)), 1.0))
        stream.sort(key=lambda e: e[2])
        motif = paper_motifs(delta=10)[name]
        graph, matcher = self._replay(stream, motif)
        offline = _normalized(find_structural_matches(graph, motif))
        assert _normalized(matcher.matches()) == offline
        assert matcher.match_count == len(offline)

    def test_new_pair_discovery_is_exact_diff(self):
        """Adding one pair discovers exactly the matches through it."""
        motif = Motif.chain(3, delta=10, phi=0)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 10.0, 0.0)
        matcher.add("a", "b", 1, 1)
        matcher.add("b", "c", 2, 1)
        before = _normalized(matcher.matches())
        matcher.add("c", "d", 3, 1)  # first event of a brand-new pair
        after = _normalized(matcher.matches())
        new = after - before
        assert before <= after
        assert all(("c", "d") in pairs for _, pairs in new)
        assert after == _normalized(find_structural_matches(graph, motif))

    def test_repeat_events_on_known_pair_discover_nothing(self):
        motif = Motif.chain(3, delta=10, phi=0)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 10.0, 0.0)
        matcher.add("a", "b", 1, 1)
        matcher.add("b", "c", 2, 1)
        count = matcher.matches_discovered
        for t in range(3, 20):
            matcher.add("a", "b", t, 2)
        assert matcher.matches_discovered == count

    def test_cycle_motif_edge_used_twice_not_duplicated(self):
        """A match whose edge mapping uses the new series at two positions
        must be discovered exactly once (first-occurrence dedup)."""
        motif = Motif(("x", "y", "x", "z"), delta=10, phi=0)  # (0,1,0,2)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 10.0, 0.0)
        matcher.add("a", "b", 1, 1)
        matcher.add("b", "a", 2, 1)   # a->b->a->? needs this both ways
        matcher.add("a", "c", 3, 1)
        graph_matches = _normalized(find_structural_matches(graph, motif))
        index_matches = _normalized(matcher.matches())
        assert index_matches == graph_matches
        assert matcher.match_count == len(index_matches)  # no duplicates


class TestSchedulingLifecycle:
    def test_infeasible_match_wakes_on_its_own_pair(self):
        """φ-infeasible matches park; they are rechecked (and scheduled)
        only when one of their own pairs receives flow."""
        motif = Motif.chain(3, delta=10, phi=5)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 10.0, 5.0)
        matcher.add("a", "b", 1, 10)
        matcher.add("b", "c", 2, 1)  # b->c flow 1 < φ: match infeasible
        assert matcher.match_count == 1
        assert matcher.scheduled_count == 0
        matcher.add("q", "r", 3, 100)  # unrelated pair: still parked
        assert matcher.scheduled_count == 0
        matcher.add("b", "c", 4, 10)  # total now ≥ φ: feasible, scheduled
        assert matcher.scheduled_count == 1

    def test_drained_match_wakes_on_first_edge_event(self):
        motif = Motif.chain(2, delta=3, phi=0)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 3.0, 0.0)
        matcher.add("a", "b", 1, 1)
        out = []
        matcher.emit_closed(100.0, out.append)  # window [1,4] closed, drained
        assert len(out) == 1
        assert matcher.scheduled_count == 0
        matcher.add("a", "b", 50, 2)  # new anchor revives the match
        assert matcher.scheduled_count == 1
        matcher.emit_closed(float("inf"), out.append)
        assert len(out) == 2

    def test_duplicate_anchor_redrains(self):
        motif = Motif.chain(2, delta=3, phi=0)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 3.0, 0.0)
        matcher.add("a", "b", 1, 1)
        out = []
        matcher.emit_closed(100.0, out.append)       # anchor 1 done, drained
        matcher.add("a", "b", 100, 2)                # fresh anchor: revived
        matcher.emit_closed(float("inf"), out.append)  # anchor 100 done
        emitted = len(out)
        matcher.add("a", "b", 100, 3)                # tied with anchor 100
        assert matcher.scheduled_count == 0          # re-drained, no window
        matcher.emit_closed(float("inf"), out.append)
        assert len(out) == emitted                   # nothing re-emitted

    def test_emit_closed_pops_only_ready_matches(self):
        motif = Motif.chain(2, delta=5, phi=0)
        graph = GrowableTimeSeriesGraph()
        matcher = IncrementalMatcher(graph, motif, 5.0, 0.0)
        matcher.add("a", "b", 1, 1)    # deadline 6
        matcher.add("c", "d", 90, 1)   # deadline 95
        out = []
        matcher.emit_closed(50.0, out.append)
        assert len(out) == 1           # only the ready match swept
        assert matcher.scheduled_count == 1  # c->d still waiting at 95


class TestProgressKeyingRegression:
    """The detector's per-match skip-rule state used to be keyed on
    ``match.vertex_map`` alone. Two distinct structural matches over the
    same vertices (multigraph-style parallel edge sequences) then shared
    one ``(last_anchor, Λ)`` cursor: whichever swept second saw the
    other's anchor as "already processed" and silently dropped instances.
    The incremental matcher now owns one :class:`MatchProgress` *object
    per match* (no shared keys at all), and the rebuild baseline keys on
    the full edge mapping (:func:`match_key`)."""

    def _parallel_matches(self):
        motif = Motif.chain(2, delta=5, phi=0)
        r1 = EdgeSeries("a", "b", [1.0, 4.0], [2.0, 3.0])
        r2 = EdgeSeries("a", "b", [2.0], [7.0])  # parallel series, same pair
        m1 = StructuralMatch(motif, ("a", "b"), (r1,))
        m2 = StructuralMatch(motif, ("a", "b"), (r2,))
        return m1, m2

    def test_shared_state_drops_instances(self):
        """The bug mechanism, demonstrated: one shared cursor loses m2."""
        m1, m2 = self._parallel_matches()
        shared = MatchProgress()
        out = []
        sweep_closed_windows(m1, shared, float("inf"), 5.0, 0.0, out.append)
        first = len(out)
        sweep_closed_windows(m2, shared, float("inf"), 5.0, 0.0, out.append)
        assert first >= 1
        assert len(out) == first  # m2's instance silently dropped

    def test_per_match_state_emits_both(self):
        """The fix: independent progress objects — both matches emit."""
        m1, m2 = self._parallel_matches()
        out = []
        sweep_closed_windows(
            m1, MatchProgress(), float("inf"), 5.0, 0.0, out.append
        )
        first = len(out)
        sweep_closed_windows(
            m2, MatchProgress(), float("inf"), 5.0, 0.0, out.append
        )
        assert first >= 1
        assert len(out) > first

    def test_match_key_carries_the_full_edge_mapping(self):
        motif = Motif.cycle(3, delta=10, phi=0)
        rab = EdgeSeries("a", "b", [1.0], [1.0])
        rbc = EdgeSeries("b", "c", [2.0], [1.0])
        rca = EdgeSeries("c", "a", [3.0], [1.0])
        match = StructuralMatch(motif, ("a", "b", "c"), (rab, rbc, rca))
        key = match_key(match)
        assert key == (
            ("a", "b", "c"),
            (("a", "b"), ("b", "c"), ("c", "a")),
        )


class TestSweepHelpers:
    def test_next_window_end(self):
        motif = Motif.chain(2, delta=4, phi=0)
        series = EdgeSeries("a", "b", [1.0, 1.0, 7.0], [1.0, 1.0, 1.0])
        match = StructuralMatch(motif, ("a", "b"), (series,))
        progress = MatchProgress(match)
        assert next_window_end(match, progress, 4.0) == 5.0
        progress.last_anchor = 1.0
        assert next_window_end(match, progress, 4.0) == 11.0
        progress.last_anchor = 7.0
        assert next_window_end(match, progress, 4.0) is None

    def test_sweep_respects_horizon_and_resumes(self):
        motif = Motif.chain(2, delta=2, phi=0)
        series = EdgeSeries(
            "a", "b", [1.0, 5.0, 9.0], [1.0, 2.0, 4.0]
        )
        match = StructuralMatch(motif, ("a", "b"), (series,))
        progress = MatchProgress(match)
        out = []
        sweep_closed_windows(match, progress, 6.0, 2.0, 0.0, out.append)
        assert [i.start_time for i in out] == [1.0]
        sweep_closed_windows(match, progress, float("inf"), 2.0, 0.0, out.append)
        assert [i.start_time for i in out] == [1.0, 5.0, 9.0]
        # Exactly once: nothing left.
        sweep_closed_windows(match, progress, float("inf"), 2.0, 0.0, out.append)
        assert len(out) == 3


def test_incremental_matcher_bootstraps_from_prefilled_graph(base_seed):
    """Construction on a non-empty graph must index its existing matches."""
    rng = random.Random(base_seed)
    stream = []
    for _ in range(40):
        u, v = rng.sample(range(5), 2)
        stream.append((u, v, float(rng.randrange(0, 30)), float(rng.randint(1, 5))))
    stream.sort(key=lambda e: e[2])
    graph = GrowableTimeSeriesGraph()
    half = len(stream) // 2
    for src, dst, t, f in stream[:half]:
        graph.append(src, dst, t, f)
    motif = Motif.chain(3, delta=8, phi=0)
    matcher = IncrementalMatcher(graph, motif, 8.0, 0.0)
    assert _normalized(matcher.matches()) == _normalized(
        find_structural_matches(graph, motif)
    )
    for src, dst, t, f in stream[half:]:
        matcher.add(src, dst, t, f)
    assert _normalized(matcher.matches()) == _normalized(
        find_structural_matches(graph, motif)
    )


def test_single_feasibility_check_per_discovery():
    """A match discovered infeasible by an add() must not be rechecked by
    the same add()'s waiting-wake pass (it already saw the new event)."""
    graph = GrowableTimeSeriesGraph()
    matcher = IncrementalMatcher(graph, Motif.chain(3, delta=10, phi=5), 10.0, 5.0)
    matcher.add("a", "b", 1, 10)
    before = matcher.feasibility_checks
    matcher.add("b", "c", 2, 1)  # discovers (a,b,c), infeasible under phi
    assert matcher.feasibility_checks == before + 1
    assert matcher.scheduled_count == 0
    matcher.add("b", "c", 3, 10)  # wake: now feasible
    assert matcher.scheduled_count == 1
