"""MotifInstance, Definition 3.2 validation and Definition 3.3 maximality."""

from __future__ import annotations

import pytest

from repro.core.instance import MotifInstance, Run, is_maximal, is_valid_instance
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


@pytest.fixture
def chain_graph():
    return InteractionGraph.from_tuples(
        [
            ("a", "b", 1, 4.0),
            ("a", "b", 2, 3.0),
            ("b", "c", 3, 5.0),
            ("b", "c", 6, 2.0),
            ("b", "c", 30, 9.0),
        ]
    )


@pytest.fixture
def ts(chain_graph):
    return chain_graph.to_time_series()


def make_instance(ts, motif, specs):
    """specs: list of ((src, dst), lo, hi) per motif edge."""
    runs = tuple(Run(ts.series(*pair), lo, hi) for pair, lo, hi in specs)
    vm = ("a", "b", "c")[: motif.num_vertices]
    return MotifInstance(motif, vm, runs)


class TestRun:
    def test_flow_and_times(self, ts):
        run = Run(ts.series("a", "b"), 0, 1)
        assert run.flow == 7.0
        assert run.first_time == 1 and run.last_time == 2
        assert run.size == 2
        assert run.items() == [(1, 4.0), (2, 3.0)]


class TestMotifInstance:
    def test_flow_is_min_over_edges(self, ts):
        motif = Motif.chain(3, delta=10, phi=0)
        inst = make_instance(
            ts, motif, [(("a", "b"), 0, 1), (("b", "c"), 0, 1)]
        )
        assert inst.flow == 7.0  # min(7, 7)
        assert inst.span == 5
        assert inst.num_interactions == 4

    def test_wrong_run_count_rejected(self, ts):
        motif = Motif.chain(3, delta=10)
        with pytest.raises(ValueError, match="needs 2 runs"):
            MotifInstance(motif, ("a", "b", "c"), (Run(ts.series("a", "b"), 0, 0),))

    def test_wrong_vertex_count_rejected(self, ts):
        motif = Motif.chain(3, delta=10)
        runs = (Run(ts.series("a", "b"), 0, 0), Run(ts.series("b", "c"), 0, 0))
        with pytest.raises(ValueError, match="mapped vertices"):
            MotifInstance(motif, ("a", "b"), runs)

    def test_equality_via_canonical_key(self, ts):
        motif = Motif.chain(3, delta=10)
        a = make_instance(ts, motif, [(("a", "b"), 0, 0), (("b", "c"), 0, 0)])
        b = make_instance(ts, motif, [(("a", "b"), 0, 0), (("b", "c"), 0, 0)])
        c = make_instance(ts, motif, [(("a", "b"), 0, 0), (("b", "c"), 0, 1)])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_as_dict_round_trip_fields(self, ts):
        motif = Motif.chain(3, delta=10, phi=0)
        inst = make_instance(ts, motif, [(("a", "b"), 0, 0), (("b", "c"), 0, 0)])
        d = inst.as_dict()
        assert d["vertices"] == ["a", "b", "c"]
        assert d["edges"][0]["events"] == [(1, 4.0)]
        assert d["edges"][1]["label"] == 2


class TestIsValidInstance:
    def make(self, ts, specs, delta=10, phi=0):
        motif = Motif.chain(3, delta=delta, phi=phi)
        return make_instance(ts, motif, specs), motif

    def test_valid(self, ts):
        inst, _ = self.make(ts, [(("a", "b"), 0, 1), (("b", "c"), 0, 1)])
        ok, reason = is_valid_instance(inst, ts)
        assert ok, reason

    def test_order_violation_detected(self, ts):
        # e2 run starts at t=3 but e1 run ends at t=2 — valid; flip to break:
        inst, _ = self.make(ts, [(("a", "b"), 0, 1), (("b", "c"), 0, 1)])
        bad = MotifInstance(inst.motif, inst.vertex_map, (inst.runs[1], inst.runs[0]))
        ok, reason = is_valid_instance(bad, ts)
        assert not ok

    def test_duration_violation_detected(self, ts):
        inst, _ = self.make(ts, [(("a", "b"), 0, 1), (("b", "c"), 0, 2)])
        ok, reason = is_valid_instance(inst, ts)
        assert not ok and "delta" in reason

    def test_phi_violation_detected(self, ts):
        inst, _ = self.make(ts, [(("a", "b"), 0, 1), (("b", "c"), 1, 1)], phi=3)
        ok, reason = is_valid_instance(inst, ts)
        assert not ok and "phi" in reason

    def test_injectivity_violation_detected(self, ts):
        motif = Motif.chain(3, delta=10)
        runs = (Run(ts.series("a", "b"), 0, 0), Run(ts.series("b", "c"), 0, 0))
        bad = MotifInstance(motif, ("a", "b", "a"), runs)
        ok, reason = is_valid_instance(bad, ts)
        assert not ok and "injective" in reason

    def test_wrong_pair_detected(self, ts):
        motif = Motif.chain(3, delta=10)
        runs = (Run(ts.series("b", "c"), 0, 0), Run(ts.series("b", "c"), 1, 1))
        bad = MotifInstance(motif, ("a", "b", "c"), runs)
        ok, reason = is_valid_instance(bad, ts)
        assert not ok

    def test_constraint_overrides(self, ts):
        inst, _ = self.make(ts, [(("a", "b"), 0, 1), (("b", "c"), 0, 1)])
        ok, _ = is_valid_instance(inst, ts, delta=2)
        assert not ok
        ok, _ = is_valid_instance(inst, ts, delta=10, phi=100)
        assert not ok


class TestIsMaximal:
    def test_maximal_instance(self, ts):
        motif = Motif.chain(3, delta=10, phi=0)
        inst = make_instance(ts, motif, [(("a", "b"), 0, 1), (("b", "c"), 0, 1)])
        assert is_maximal(inst)

    def test_gap_makes_non_maximal(self, ts):
        # Omitting (2, 3.0) from e1 leaves an addable element before e2@3.
        motif = Motif.chain(3, delta=10, phi=0)
        inst = make_instance(ts, motif, [(("a", "b"), 0, 0), (("b", "c"), 0, 1)])
        assert not is_maximal(inst)

    def test_delta_blocks_addition(self, ts):
        # Window only covers t in [2..6]; (1,4.0) would stretch span to 5 — ok
        # within delta=10 → non-maximal. With delta=4 it's blocked → maximal.
        motif = Motif.chain(3, delta=4, phi=0)
        inst = make_instance(ts, motif, [(("a", "b"), 1, 1), (("b", "c"), 0, 1)])
        assert is_maximal(inst)
        assert not is_maximal(inst, delta=10)

    def test_order_blocks_addition(self, ts):
        # e1 = {(2,3)}, e2 = {(3,5)}: (1,4) is before e2's first, addable →
        # non-maximal; but if e1 also had (1,4) the instance is maximal
        # (next candidate (6,2) for e2 is included, (30,9) violates delta).
        motif = Motif.chain(3, delta=10, phi=0)
        non_max = make_instance(ts, motif, [(("a", "b"), 1, 1), (("b", "c"), 0, 0)])
        assert not is_maximal(non_max)
