"""The fused search pipeline and match-feasibility prechecks."""

from __future__ import annotations

import random

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.enumeration import match_is_feasible
from repro.core.matching import find_structural_matches, iter_structural_matches
from repro.core.motif import Motif, paper_motifs
from repro.graph.interaction import InteractionGraph
from repro.graph.timeseries import EdgeSeries


def random_graph(seed, nodes=7, events=60, horizon=60):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


class TestMatchIsFeasible:
    def series(self, times, flows=None):
        flows = flows or [1.0] * len(times)
        return EdgeSeries("u", "v", times, flows)

    def test_ordered_chain_feasible(self):
        series = [self.series([1, 5]), self.series([3, 7]), self.series([4, 9])]
        assert match_is_feasible(series, phi=0)

    def test_temporal_dead_end(self):
        # Second edge's events all precede the first edge's earliest.
        series = [self.series([10]), self.series([1, 2, 3])]
        assert not match_is_feasible(series, phi=0)

    def test_tie_blocks_chain(self):
        series = [self.series([5]), self.series([5])]
        assert not match_is_feasible(series, phi=0)

    def test_flow_infeasible(self):
        series = [self.series([1], [2.0]), self.series([2], [0.5])]
        assert not match_is_feasible(series, phi=1.0)
        assert match_is_feasible(series, phi=0.4)


class TestPrunedMatching:
    @pytest.mark.parametrize("seed", range(5))
    def test_pruned_is_feasible_subset(self, seed):
        g = random_graph(seed)
        ts = g.to_time_series()
        motif = Motif.chain(4, delta=15, phi=2)
        full = set()
        for m in find_structural_matches(ts, motif):
            full.add(m.vertex_map)
        pruned = list(
            iter_structural_matches(ts, motif, phi=2, temporal_pruning=True)
        )
        assert {m.vertex_map for m in pruned} <= full
        for m in pruned:
            assert match_is_feasible(m.series, 2)

    @pytest.mark.parametrize("seed", range(5))
    def test_pruning_keeps_all_instance_bearing_matches(self, seed):
        from repro.core.enumeration import find_instances_in_match

        g = random_graph(seed)
        ts = g.to_time_series()
        motif = Motif.chain(3, delta=12, phi=1)
        pruned_maps = {
            m.vertex_map
            for m in iter_structural_matches(
                ts, motif, phi=1, temporal_pruning=True
            )
        }
        for match in find_structural_matches(ts, motif):
            if find_instances_in_match(match):
                assert match.vertex_map in pruned_maps


class TestFusedEngineMode:
    @pytest.mark.parametrize("seed", range(6))
    def test_fused_equals_cached(self, seed):
        g = random_graph(seed)
        motif = Motif.chain(3, delta=12, phi=2)
        engine = FlowMotifEngine(g)
        cached = engine.find_instances(motif, use_cache=True)
        fused = engine.find_instances(motif, use_cache=False)
        assert {i.canonical_key() for i in cached.instances} == {
            i.canonical_key() for i in fused.instances
        }

    def test_fused_catalog_on_fixture(self, fig2_graph):
        engine = FlowMotifEngine(fig2_graph)
        for name, motif in paper_motifs(delta=10, phi=5).items():
            cached = engine.find_instances(motif, use_cache=True)
            fused = engine.find_instances(motif, use_cache=False)
            assert cached.count == fused.count, name

    def test_fused_reports_fewer_matches(self):
        g = random_graph(11, nodes=8, events=50)
        motif = Motif.chain(4, delta=5, phi=3)
        engine = FlowMotifEngine(g)
        cached = engine.find_instances(motif, use_cache=True)
        fused = engine.find_instances(motif, use_cache=False)
        assert fused.num_matches <= cached.num_matches
        assert fused.count == cached.count

    def test_fused_with_overrides(self, fig7_graph):
        engine = FlowMotifEngine(fig7_graph)
        motif = Motif.cycle(3, delta=999, phi=99)
        fused = engine.find_instances(motif, delta=10, phi=5, use_cache=False)
        assert fused.count == 1
