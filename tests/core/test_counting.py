"""Counting without construction must agree with full enumeration."""

from __future__ import annotations

import random

import pytest

from repro.core.counting import count_instances, count_instances_in_match
from repro.core.enumeration import find_instances
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif, paper_motifs
from repro.graph.interaction import InteractionGraph


def random_graph(seed, nodes=6, events=40, horizon=50):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


class TestCountMatchesEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_chain(self, seed):
        g = random_graph(seed)
        motif = Motif.chain(3, delta=12, phi=2)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        assert count_instances(matches) == len(find_instances(matches))

    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_cycle(self, seed):
        g = random_graph(seed, nodes=5, events=50)
        motif = Motif.cycle(3, delta=15, phi=1)
        ts = g.to_time_series()
        matches = find_structural_matches(ts, motif)
        assert count_instances(matches) == len(find_instances(matches))

    def test_figure7(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        assert count_instances(matches) == len(find_instances(matches)) == 6

    @pytest.mark.parametrize("phi", [0, 2, 5, 9])
    def test_phi_variation(self, fig7_graph, phi):
        motif = Motif.cycle(3, delta=10, phi=phi)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        assert count_instances(matches) == len(find_instances(matches))

    def test_per_match_counts_sum(self, fig7_graph):
        motif = Motif.cycle(3, delta=10, phi=0)
        ts = fig7_graph.to_time_series()
        matches = find_structural_matches(ts, motif)
        assert count_instances(matches) == sum(
            count_instances_in_match(m) for m in matches
        )

    def test_full_catalog_on_random_graph(self):
        g = random_graph(99, nodes=8, events=60)
        ts = g.to_time_series()
        for name, motif in paper_motifs(delta=15, phi=1).items():
            matches = find_structural_matches(ts, motif)
            assert count_instances(matches) == len(
                find_instances(matches)
            ), name

    def test_empty_matches(self):
        assert count_instances([]) == 0
