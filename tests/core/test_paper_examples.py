"""Exact reproduction of every worked example in the paper (Sections 1–5).

These tests pin the implementation to the paper's own ground truth:
Figure 1 (intro instances), Figures 2/4/5/6 (running example), Figure 7
(window positions and instance walkthrough) and the Section 5.1 top-1
result that Table 2 computes.
"""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.instance import is_maximal, is_valid_instance
from repro.core.motif import Motif
from repro.core.windows import iter_maximal_windows


def _edge_events(instance):
    """Per motif edge: (src, dst, ((t, f), ...)) — hashable for comparison."""
    return tuple(
        (run.series.src, run.series.dst, tuple(run.items()))
        for run in instance.runs
    )


class TestFigure6StructuralMatches:
    """Phase P1 on the running example finds the six matches of Figure 6."""

    def test_six_matches(self, fig2_engine, triangle):
        matches = fig2_engine.structural_matches(triangle)
        assert len(matches) == 6

    def test_match_walks(self, fig2_engine, triangle):
        walks = {m.walk for m in fig2_engine.structural_matches(triangle)}
        assert walks == {
            ("u1", "u2", "u3", "u1"),
            ("u2", "u3", "u1", "u2"),
            ("u3", "u1", "u2", "u3"),
            ("u2", "u3", "u4", "u2"),
            ("u3", "u4", "u2", "u3"),
            ("u4", "u2", "u3", "u4"),
        }

    def test_matches_carry_series(self, fig2_engine, triangle):
        for match in fig2_engine.structural_matches(triangle):
            assert len(match.series) == 3
            for i, series in enumerate(match.series):
                m_src, m_dst = triangle.edge(i)
                assert series.src == match.vertex_map[m_src]
                assert series.dst == match.vertex_map[m_dst]


class TestFigure4Instance:
    """The maximal instance of M(3,3) with δ=10, φ=7 (Figure 4a)."""

    def test_exactly_one_instance(self, fig2_engine, triangle):
        result = fig2_engine.find_instances(triangle)
        assert result.count == 1

    def test_instance_content(self, fig2_engine, triangle):
        [instance] = fig2_engine.find_instances(triangle).instances
        assert _edge_events(instance) == (
            ("u3", "u1", ((10, 10),)),
            ("u1", "u2", ((13, 5), (15, 7))),
            ("u2", "u3", ((18, 20),)),
        )

    def test_instance_flow_is_min_aggregate(self, fig2_engine, triangle):
        [instance] = fig2_engine.find_instances(triangle).instances
        # Aggregates are 10, 12, 20; Equation 1 takes the minimum.
        assert instance.flow == 10
        assert instance.span == 8

    def test_instance_is_valid_and_maximal(self, fig2_engine, triangle):
        [instance] = fig2_engine.find_instances(triangle).instances
        ok, reason = is_valid_instance(
            instance, fig2_engine.time_series_graph
        )
        assert ok, reason
        assert is_maximal(instance)

    def test_figure4b_subset_is_not_emitted(self, fig2_engine, triangle):
        """The non-maximal variant (without (13,5)) must not appear."""
        instances = fig2_engine.find_instances(triangle).instances
        for instance in instances:
            events = dict(
                ((r.series.src, r.series.dst), tuple(r.items()))
                for r in instance.runs
            )
            assert events.get(("u1", "u2")) != ((15, 7),)


class TestFigure7Windows:
    """Window positions of the Figure 7 walkthrough (δ=10)."""

    @pytest.fixture
    def u3_match(self, fig7_engine, triangle_phi0):
        matches = fig7_engine.structural_matches(triangle_phi0)
        return next(m for m in matches if m.vertex_map[0] == "u3")

    def test_window_positions(self, u3_match):
        windows = list(
            iter_maximal_windows(u3_match.series[0], u3_match.series[-1], 10)
        )
        assert [(w.start, w.end) for w in windows] == [(10, 20), (15, 25)]

    def test_skipped_positions_without_rule(self, u3_match):
        """Disabling the skip rule exposes the [13,23] and [18,28] positions
        the paper explicitly skips."""
        windows = list(
            iter_maximal_windows(
                u3_match.series[0], u3_match.series[-1], 10, skip_rule=False
            )
        )
        assert [(w.start, w.end) for w in windows] == [
            (10, 20),
            (13, 23),
            (15, 25),
            (18, 28),
        ]


class TestFigure7Instances:
    """The instance walkthrough of Section 4 on the Figure 7 match."""

    def _u3_instances(self, engine, motif):
        result = engine.find_instances(motif)
        return [
            inst for inst in result.instances if inst.vertex_map[0] == "u3"
        ]

    def test_paper_instances_present(self, fig7_engine, triangle_phi0):
        """The two instances spelled out for prefix Tp=[10,10] exist."""
        keys = {
            _edge_events(i)
            for i in self._u3_instances(fig7_engine, triangle_phi0)
        }
        assert (
            ("u3", "u1", ((10, 5),)),
            ("u1", "u2", ((11, 3),)),
            ("u2", "u3", ((14, 4), (19, 6))),
        ) in keys
        assert (
            ("u3", "u1", ((10, 5),)),
            ("u1", "u2", ((11, 3), (16, 3))),
            ("u2", "u3", ((19, 6),)),
        ) in keys

    def test_full_maximal_instance_set(self, fig7_engine, triangle_phi0):
        """Exactly four maximal instances exist on the u3-anchored match
        (two per window; derived by hand in DESIGN.md §5)."""
        keys = {
            _edge_events(i)
            for i in self._u3_instances(fig7_engine, triangle_phi0)
        }
        assert keys == {
            (
                ("u3", "u1", ((10, 5),)),
                ("u1", "u2", ((11, 3),)),
                ("u2", "u3", ((14, 4), (19, 6))),
            ),
            (
                ("u3", "u1", ((10, 5),)),
                ("u1", "u2", ((11, 3), (16, 3))),
                ("u2", "u3", ((19, 6),)),
            ),
            (
                ("u3", "u1", ((10, 5), (13, 2), (15, 3))),
                ("u1", "u2", ((16, 3),)),
                ("u2", "u3", ((19, 6),)),
            ),
            (
                ("u3", "u1", ((15, 3),)),
                ("u1", "u2", ((16, 3),)),
                ("u2", "u3", ((19, 6), (24, 3), (25, 2))),
            ),
        }

    def test_invalid_prefix_not_extended(self, fig7_engine, triangle_phi0):
        """No instance assigns exactly {(10,5),(13,2)} to e1 — the paper's
        "no element of e2 between (13,2) and (15,3)" remark."""
        for instance in self._u3_instances(fig7_engine, triangle_phi0):
            assert tuple(instance.runs[0].items()) != ((10, 5), (13, 2))

    def test_phi5_rejects_low_flow_prefixes(self, fig7_engine):
        """With φ=5 any instance using e2 ← {(11,3)} alone is rejected."""
        motif = Motif.cycle(3, delta=10, phi=5)
        instances = self._u3_instances(fig7_engine, motif)
        keys = {_edge_events(i) for i in instances}
        assert keys == {
            (
                ("u3", "u1", ((10, 5),)),
                ("u1", "u2", ((11, 3), (16, 3))),
                ("u2", "u3", ((19, 6),)),
            ),
        }

    def test_all_outputs_valid_and_maximal(self, fig7_engine, triangle_phi0):
        graph = fig7_engine.time_series_graph
        for instance in fig7_engine.find_instances(triangle_phi0).instances:
            ok, reason = is_valid_instance(instance, graph)
            assert ok, reason
            assert is_maximal(instance)


class TestSection51TopOne:
    """The top-1 results that Table 2's DP trace computes."""

    def test_dp_top1_flow_is_5(self, fig7_engine, triangle_phi0):
        best = fig7_engine.top_one_dp(triangle_phi0)
        assert best.flow == 5.0

    def test_dp_top1_instance_matches_paper(self, fig7_engine, triangle_phi0):
        best = fig7_engine.top_one_dp(triangle_phi0)
        assert _edge_events(best.instance) == (
            ("u3", "u1", ((10, 5),)),
            ("u1", "u2", ((11, 3), (16, 3))),
            ("u2", "u3", ((19, 6),)),
        )

    def test_topk_k1_agrees_with_dp(self, fig7_engine, triangle_phi0):
        [best] = fig7_engine.top_k(triangle_phi0, 1)
        assert best.flow == 5.0


class TestFigure1Instances:
    """The introduction's chain-motif instances (Figures 1c/1d)."""

    def test_two_instances(self, fig1_graph):
        engine = FlowMotifEngine(fig1_graph)
        motif = Motif.chain(3, delta=5, phi=5)
        result = engine.find_instances(motif)
        keys = {_edge_events(i) for i in result.instances}
        assert keys == {
            (
                ("u4", "u1", ((1, 6),)),
                ("u1", "u2", ((2, 5), (4, 3))),
            ),
            (
                ("u1", "u2", ((2, 5),)),
                ("u2", "u3", ((3, 4), (5, 2))),
            ),
        }
