"""Phase P1: structural spanning-path matching."""

from __future__ import annotations

import pytest

from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


def graph_of(*pairs):
    """A graph with one unit interaction per given (src, dst) pair."""
    g = InteractionGraph()
    for i, (src, dst) in enumerate(pairs):
        g.add_interaction(src, dst, float(i), 1.0)
    return g


class TestChainMatching:
    def test_simple_chain(self):
        ts = graph_of(("a", "b"), ("b", "c")).to_time_series()
        matches = find_structural_matches(ts, Motif.chain(3, 1))
        assert [m.walk for m in matches] == [("a", "b", "c")]

    def test_branching_counts(self):
        ts = graph_of(
            ("a", "b"), ("b", "c"), ("b", "d"), ("b", "e")
        ).to_time_series()
        matches = find_structural_matches(ts, Motif.chain(3, 1))
        assert {m.walk for m in matches} == {
            ("a", "b", "c"), ("a", "b", "d"), ("a", "b", "e"),
        }

    def test_injectivity_blocks_revisits(self):
        # a→b→a is NOT a match of the 3-chain (v0 and v2 are distinct
        # motif vertices and must map to distinct graph vertices).
        ts = graph_of(("a", "b"), ("b", "a")).to_time_series()
        matches = find_structural_matches(ts, Motif.chain(3, 1))
        assert matches == []

    def test_two_cycle_motif_matches_back_and_forth(self):
        ts = graph_of(("a", "b"), ("b", "a")).to_time_series()
        matches = find_structural_matches(ts, Motif.cycle(2, 1))
        assert {m.walk for m in matches} == {("a", "b", "a"), ("b", "a", "b")}

    def test_deterministic_order(self):
        g = graph_of(("b", "c"), ("a", "b"), ("c", "d"))
        ts = g.to_time_series()
        first = [m.walk for m in find_structural_matches(ts, Motif.chain(3, 1))]
        second = [m.walk for m in find_structural_matches(ts, Motif.chain(3, 1))]
        assert first == second
        assert first == sorted(first, key=repr)


class TestCycleMatching:
    def test_triangle_rotations(self):
        ts = graph_of(("a", "b"), ("b", "c"), ("c", "a")).to_time_series()
        matches = find_structural_matches(ts, Motif.cycle(3, 1))
        assert {m.walk for m in matches} == {
            ("a", "b", "c", "a"), ("b", "c", "a", "b"), ("c", "a", "b", "c"),
        }

    def test_no_triangle_no_match(self):
        ts = graph_of(("a", "b"), ("b", "c"), ("a", "c")).to_time_series()
        assert find_structural_matches(ts, Motif.cycle(3, 1)) == []

    def test_cycle_closure_checks_edge_existence(self):
        # Path a→b→c→d exists, but d→a doesn't: no 4-cycle.
        ts = graph_of(("a", "b"), ("b", "c"), ("c", "d")).to_time_series()
        assert find_structural_matches(ts, Motif.cycle(4, 1)) == []


class TestVariantMatching:
    def test_cycle_with_tail(self):
        # M(4,4)B: v0→v1→v2→v0→v3.
        motif = Motif([0, 1, 2, 0, 3], delta=1)
        ts = graph_of(
            ("a", "b"), ("b", "c"), ("c", "a"), ("a", "d")
        ).to_time_series()
        matches = find_structural_matches(ts, motif)
        assert {m.walk for m in matches} == {("a", "b", "c", "a", "d")}

    def test_tail_into_cycle(self):
        # M(4,4)C: v0→v1→v2→v3→v1.
        motif = Motif([0, 1, 2, 3, 1], delta=1)
        ts = graph_of(
            ("x", "a"), ("a", "b"), ("b", "c"), ("c", "a")
        ).to_time_series()
        matches = find_structural_matches(ts, motif)
        assert {m.walk for m in matches} == {("x", "a", "b", "c", "a")}

    def test_tail_vertex_must_differ_from_cycle(self):
        # Only a triangle, no distinct tail vertex available.
        motif = Motif([0, 1, 2, 0, 3], delta=1)
        ts = graph_of(("a", "b"), ("b", "c"), ("c", "a")).to_time_series()
        assert find_structural_matches(ts, motif) == []


class TestMatchContents:
    def test_series_follow_motif_edges(self, fig2_graph):
        ts = fig2_graph.to_time_series()
        motif = Motif.cycle(3, delta=10)
        for match in find_structural_matches(ts, motif):
            for i, series in enumerate(match.series):
                msrc, mdst = motif.edge(i)
                assert series.src == match.vertex_map[msrc]
                assert series.dst == match.vertex_map[mdst]

    def test_match_equality(self):
        ts = graph_of(("a", "b"), ("b", "c")).to_time_series()
        m1, = find_structural_matches(ts, Motif.chain(3, 1))
        m2, = find_structural_matches(ts, Motif.chain(3, 1))
        assert m1 == m2
        assert hash(m1) == hash(m2)

    def test_empty_graph(self):
        ts = InteractionGraph().to_time_series()
        assert find_structural_matches(ts, Motif.chain(3, 1)) == []

    def test_single_edge_motif(self):
        ts = graph_of(("a", "b"), ("c", "d")).to_time_series()
        matches = find_structural_matches(ts, Motif.chain(2, 1))
        assert {m.walk for m in matches} == {("a", "b"), ("c", "d")}
