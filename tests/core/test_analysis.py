"""Activity analysis (grouping per structural match, timelines)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    activity_timeline,
    group_by_match,
    group_by_vertices,
    rank_matches_by_activity,
)
from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.datasets.fixtures import figure7_match_graph


@pytest.fixture
def instances():
    engine = FlowMotifEngine(figure7_match_graph())
    return engine.find_instances(Motif.cycle(3, delta=10, phi=0)).instances


class TestGrouping:
    def test_groups_partition_instances(self, instances):
        groups = group_by_vertices(instances)
        assert sum(len(g) for g in groups.values()) == len(instances)
        # Figure 7's graph: 3 rotations of one triangle are active.
        assert ("u3", "u1", "u2") in groups
        assert len(groups[("u3", "u1", "u2")]) == 4

    def test_profiles(self, instances):
        profiles = {p.vertices: p for p in group_by_match(instances)}
        p = profiles[("u3", "u1", "u2")]
        assert p.num_instances == 4
        assert p.max_flow == 5.0
        assert p.total_flow == pytest.approx(3 + 5 + 3 + 3)
        assert p.first_start == 10
        assert p.last_end == 25
        assert p.active_span == 15

    def test_ranking_by_count(self, instances):
        top = rank_matches_by_activity(instances, by="num_instances", top=1)
        assert top[0].vertices == ("u3", "u1", "u2")

    def test_ranking_by_max_flow(self, instances):
        top = rank_matches_by_activity(instances, by="max_flow", top=3)
        flows = [p.max_flow for p in top]
        assert flows == sorted(flows, reverse=True)

    def test_invalid_key(self, instances):
        with pytest.raises(ValueError, match="by must be"):
            rank_matches_by_activity(instances, by="magic")

    def test_empty_input(self):
        assert group_by_match([]) == []
        assert rank_matches_by_activity([]) == []


class TestTimeline:
    def test_buckets(self, instances):
        timeline = activity_timeline(instances, bucket_width=10.0)
        starts = [t for t, _, _ in timeline]
        assert starts == sorted(starts)
        assert sum(count for _, count, _ in timeline) == len(instances)

    def test_flow_totals(self, instances):
        timeline = activity_timeline(instances, bucket_width=1000.0)
        [(_, count, flow)] = timeline
        assert count == len(instances)
        assert flow == pytest.approx(sum(i.flow for i in instances))

    def test_invalid_bucket(self, instances):
        with pytest.raises(ValueError, match="bucket_width"):
            activity_timeline(instances, bucket_width=0)

    def test_origin_shift(self, instances):
        timeline = activity_timeline(instances, bucket_width=10.0, origin=5.0)
        assert all((t - 5.0) % 10.0 == 0 for t, _, _ in timeline)
