"""Motif model and the Figure 3 catalog."""

from __future__ import annotations

import pytest

from repro.core.motif import Motif, PAPER_MOTIF_PATHS, paper_motifs


class TestMotifConstruction:
    def test_normalizes_vertices(self):
        m = Motif(["x", "y", "z", "x"], delta=10)
        assert m.spanning_path == (0, 1, 2, 0)

    def test_edges_in_label_order(self):
        m = Motif([0, 1, 2, 0], delta=10)
        assert m.edges == ((0, 1), (1, 2), (2, 0))

    def test_counts(self):
        m = Motif([0, 1, 2, 0, 3], delta=5)
        assert m.num_edges == 4
        assert m.num_vertices == 4

    def test_too_short_path_rejected(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Motif([0], delta=1)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError, match="delta"):
            Motif([0, 1], delta=-1)

    def test_negative_phi_rejected(self):
        with pytest.raises(ValueError, match="phi"):
            Motif([0, 1], delta=1, phi=-2)

    def test_zero_delta_allowed(self):
        assert Motif([0, 1], delta=0).delta == 0.0

    def test_self_loop_path_allowed(self):
        m = Motif([0, 0], delta=1)
        assert m.edges == ((0, 0),)


class TestMotifFactories:
    def test_chain(self):
        m = Motif.chain(4, delta=10, phi=2)
        assert m.spanning_path == (0, 1, 2, 3)
        assert m.name == "M(4,3)"
        assert not m.is_cyclic

    def test_cycle(self):
        m = Motif.cycle(4, delta=10)
        assert m.spanning_path == (0, 1, 2, 3, 0)
        assert m.name == "M(4,4)"
        assert m.is_cyclic

    def test_chain_too_small(self):
        with pytest.raises(ValueError):
            Motif.chain(1, delta=1)

    def test_from_labeled_edges(self):
        m = Motif.from_labeled_edges([("a", "b"), ("b", "c"), ("c", "a")], delta=7)
        assert m.spanning_path == (0, 1, 2, 0)

    def test_from_labeled_edges_rejects_broken_path(self):
        with pytest.raises(ValueError, match="must form a path"):
            Motif.from_labeled_edges([("a", "b"), ("c", "d")], delta=7)

    def test_with_constraints(self):
        m = Motif.cycle(3, delta=10, phi=5)
        m2 = m.with_constraints(phi=9)
        assert m2.phi == 9 and m2.delta == 10
        assert m.phi == 5  # original untouched
        assert m2.name == m.name


class TestMotifEquality:
    def test_same_shape_same_constraints_equal(self):
        assert Motif(["a", "b", "a"], delta=5) == Motif([7, 9, 7], delta=5)

    def test_different_constraints_not_equal(self):
        assert Motif([0, 1], delta=5) != Motif([0, 1], delta=6)
        assert Motif([0, 1], delta=5, phi=1) != Motif([0, 1], delta=5, phi=2)

    def test_hashable(self):
        catalog = {Motif.cycle(3, 10): "tri"}
        assert catalog[Motif([5, 6, 7, 5], 10)] == "tri"


class TestPaperCatalog:
    def test_ten_motifs_in_paper_order(self):
        names = list(paper_motifs(600, 5))
        assert names == [
            "M(3,2)", "M(3,3)", "M(4,3)", "M(4,4)A", "M(4,4)B",
            "M(4,4)C", "M(5,4)", "M(5,5)A", "M(5,5)B", "M(5,5)C",
        ]

    def test_names_match_sizes(self):
        for name, motif in paper_motifs(1).items():
            # e.g. "M(4,4)B" → 4 vertices, 4 edges.
            inner = name[name.index("(") + 1 : name.index(")")]
            vertices, edges = (int(x) for x in inner.split(","))
            assert motif.num_vertices == vertices, name
            assert motif.num_edges == edges, name

    def test_all_paths_are_valid_spanning_paths(self):
        for name, path in PAPER_MOTIF_PATHS.items():
            motif = Motif(path, delta=1)
            # Consecutive edges must chain.
            for i in range(motif.num_edges - 1):
                assert motif.edge(i)[1] == motif.edge(i + 1)[0], name

    def test_constraints_applied(self):
        for motif in paper_motifs(600, 5).values():
            assert motif.delta == 600
            assert motif.phi == 5

    def test_variants_are_distinct_shapes(self):
        catalog = paper_motifs(1)
        shapes = {m.spanning_path for m in catalog.values()}
        assert len(shapes) == len(catalog)
