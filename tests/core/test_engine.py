"""The FlowMotifEngine facade."""

from __future__ import annotations

import pytest

from repro.core.engine import FlowMotifEngine
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


class TestEngineConstruction:
    def test_accepts_interaction_graph(self, fig2_graph):
        engine = FlowMotifEngine(fig2_graph)
        assert engine.time_series_graph.num_nodes == 4

    def test_accepts_time_series_graph(self, fig2_graph):
        engine = FlowMotifEngine(fig2_graph.to_time_series())
        assert engine.time_series_graph.num_nodes == 4

    def test_rejects_other_types(self):
        with pytest.raises(TypeError, match="InteractionGraph"):
            FlowMotifEngine([("a", "b", 1, 1)])


class TestSearchResult:
    def test_result_fields(self, fig2_engine, triangle):
        result = fig2_engine.find_instances(triangle)
        assert result.motif is triangle
        assert result.count == len(result.instances) == 1
        assert result.num_matches == 6
        assert result.p1_seconds >= 0.0
        assert result.p2_seconds >= 0.0
        assert result.total_seconds == result.p1_seconds + result.p2_seconds

    def test_collect_false_counts_only(self, fig7_engine, triangle_phi0):
        result = fig7_engine.find_instances(triangle_phi0, collect=False)
        assert result.instances == []
        assert result.count == 6

    def test_flows_sorted(self, fig7_engine, triangle_phi0):
        result = fig7_engine.find_instances(triangle_phi0)
        flows = result.flows()
        assert flows == sorted(flows, reverse=True)

    def test_constraint_overrides(self, fig7_engine, triangle_phi0):
        strict = fig7_engine.find_instances(triangle_phi0, phi=5)
        assert strict.count == 1
        loose = fig7_engine.find_instances(triangle_phi0, delta=1)
        assert loose.count == 0


class TestMatchCache:
    def test_cache_returns_equal_matches(self, fig2_engine, triangle):
        first = fig2_engine.structural_matches(triangle)
        second = fig2_engine.structural_matches(triangle)
        assert first == second

    def test_cache_shared_across_constraints(self, fig2_graph):
        engine = FlowMotifEngine(fig2_graph)
        a = Motif.cycle(3, delta=10, phi=7)
        b = Motif.cycle(3, delta=99, phi=0)
        engine.structural_matches(a)
        matches = engine.structural_matches(b)
        # Served from the shape cache, but rebound to motif b.
        assert all(m.motif is b for m in matches)
        assert len(matches) == 6

    def test_cache_can_be_cleared(self, fig2_engine, triangle):
        fig2_engine.structural_matches(triangle)
        fig2_engine.clear_cache()
        assert fig2_engine.structural_matches(triangle, use_cache=False)

    def test_count_matches_find(self, fig7_engine, triangle_phi0):
        count = fig7_engine.count_instances(triangle_phi0)
        find = fig7_engine.find_instances(triangle_phi0)
        assert count.count == find.count
        assert count.num_matches == find.num_matches


class TestEngineVariants:
    def test_top_k(self, fig7_engine, triangle_phi0):
        top2 = fig7_engine.top_k(triangle_phi0, 2)
        assert [i.flow for i in top2] == [5.0, 4.0]

    def test_top_one_dp(self, fig7_engine, triangle_phi0):
        best = fig7_engine.top_one_dp(triangle_phi0)
        assert best.flow == 5.0

    def test_empty_graph_searches(self):
        engine = FlowMotifEngine(InteractionGraph())
        motif = Motif.chain(3, delta=10)
        assert engine.find_instances(motif).count == 0
        assert engine.count_instances(motif).count == 0
        assert engine.top_k(motif, 3) == []
        assert engine.top_one_dp(motif).flow == 0.0
