"""DAG motifs with forks and joins (the Section 7 generalization)."""

from __future__ import annotations

import random

import pytest

from repro.core.dag import GeneralMotif, find_dag_instances, iter_dag_matches
from repro.core.enumeration import find_instances
from repro.core.instance import is_valid_instance
from repro.core.matching import find_structural_matches
from repro.core.motif import Motif
from repro.graph.interaction import InteractionGraph


def random_graph(seed, nodes=6, events=50, horizon=50):
    rng = random.Random(seed)
    g = InteractionGraph()
    for _ in range(events):
        src = rng.randrange(nodes)
        dst = rng.randrange(nodes)
        while dst == src:
            dst = rng.randrange(nodes)
        g.add_interaction(src, dst, rng.uniform(0, horizon), rng.uniform(0.5, 5))
    return g


class TestGeneralMotifModel:
    def test_normalization(self):
        m = GeneralMotif([("u", "v"), ("u", "w")], delta=5)
        assert m.edges == ((0, 1), (0, 2))
        assert m.num_vertices == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GeneralMotif([], delta=5)

    def test_interface_compatible_with_motif(self):
        m = GeneralMotif([("a", "b"), ("b", "c")], delta=5, phi=1)
        assert m.edge(0) == (0, 1)
        assert m.num_edges == 2
        assert m.delta == 5 and m.phi == 1


class TestDagMatching:
    def test_fork_join_match(self):
        g = InteractionGraph.from_tuples(
            [
                ("u", "v", 1, 1.0),
                ("u", "w", 2, 1.0),
                ("v", "x", 3, 1.0),
                ("w", "x", 4, 1.0),
            ]
        )
        motif = GeneralMotif(
            [("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")], delta=10
        )
        matches = list(iter_dag_matches(g.to_time_series(), motif))
        vertex_maps = {m.vertex_map for m in matches}
        assert ("u", "v", "w", "x") in vertex_maps
        # The symmetric relabeling (v ↔ w) is also a distinct match.
        assert ("u", "w", "v", "x") in vertex_maps
        assert len(matches) == 2

    def test_injectivity(self):
        g = InteractionGraph.from_tuples(
            [("a", "b", 1, 1.0), ("b", "a", 2, 1.0)]
        )
        # Fork u→v, u→w requires two distinct targets.
        motif = GeneralMotif([("u", "v"), ("u", "w")], delta=10)
        assert list(iter_dag_matches(g.to_time_series(), motif)) == []

    def test_path_motifs_match_dfs_matcher(self):
        g = random_graph(5)
        ts = g.to_time_series()
        path_motif = Motif.cycle(3, delta=10)
        dag_motif = GeneralMotif([(0, 1), (1, 2), (2, 0)], delta=10)
        path_maps = {
            m.vertex_map for m in find_structural_matches(ts, path_motif)
        }
        dag_maps = {m.vertex_map for m in iter_dag_matches(ts, dag_motif)}
        assert path_maps == dag_maps


class TestDagEnumeration:
    @pytest.mark.parametrize("seed", range(6))
    def test_path_shaped_dag_equals_path_engine(self, seed):
        """On path-shaped motifs the DAG engine must reproduce the paper
        engine exactly (same instances, same flows)."""
        g = random_graph(seed)
        ts = g.to_time_series()
        path_motif = Motif.chain(3, delta=12, phi=1)
        dag_motif = GeneralMotif([(0, 1), (1, 2)], delta=12, phi=1)
        path_matches = find_structural_matches(ts, path_motif)
        expected = {
            (i.vertex_map, tuple(tuple(sorted(r.items())) for r in i.runs))
            for i in find_instances(path_matches)
        }
        actual = {
            (i.vertex_map, tuple(tuple(sorted(r.items())) for r in i.runs))
            for i in find_dag_instances(ts, dag_motif)
        }
        assert actual == expected

    def test_fork_join_instance(self):
        g = InteractionGraph.from_tuples(
            [
                ("u", "v", 1, 5.0),
                ("u", "w", 2, 4.0),
                ("v", "x", 3, 5.0),
                ("w", "x", 4, 4.0),
            ]
        )
        ts = g.to_time_series()
        motif = GeneralMotif(
            [("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")], delta=10, phi=3
        )
        instances = find_dag_instances(ts, motif)
        mine = [i for i in instances if i.vertex_map == ("u", "v", "w", "x")]
        assert len(mine) == 1
        inst = mine[0]
        assert inst.flow == 4.0
        ok, reason = is_valid_instance(inst, ts)
        assert ok, reason

    def test_total_order_is_enforced(self):
        """Fork edges must still respect the global label order: if the
        second fork edge fires before the first, there is no instance."""
        g = InteractionGraph.from_tuples(
            [
                ("u", "v", 2, 5.0),
                ("u", "w", 1, 4.0),  # before the (u, v) event → invalid
                ("v", "x", 3, 5.0),
                ("w", "x", 4, 4.0),
            ]
        )
        motif = GeneralMotif(
            [("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")], delta=10
        )
        instances = find_dag_instances(g.to_time_series(), motif)
        assert all(i.vertex_map != ("u", "v", "w", "x") for i in instances)

    def test_phi_applies_per_edge(self):
        g = InteractionGraph.from_tuples(
            [
                ("u", "v", 1, 5.0),
                ("u", "w", 2, 1.0),
                ("v", "x", 3, 5.0),
                ("w", "x", 4, 5.0),
            ]
        )
        motif = GeneralMotif(
            [("u", "v"), ("u", "w"), ("v", "x"), ("w", "x")], delta=10, phi=3
        )
        instances = find_dag_instances(g.to_time_series(), motif)
        assert all(i.vertex_map != ("u", "v", "w", "x") for i in instances)
